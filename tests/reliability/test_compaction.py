"""Tests for LSM compaction: planning, merge semantics, bloom-filter
read skipping, and the mixed-version (v1 + v2) property test against a
linear-scan oracle (satellite)."""

from __future__ import annotations

import io
import json
import struct
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.serialize import VERSION_1, VERSION_2, dump_database
from repro.reliability import (
    BackgroundCompactor,
    CompactionPolicy,
    Compactor,
    plan_compaction,
    stream_load_probe,
    verify_store,
)
from repro.reliability.compaction import REASON_SIZE_TIER, REASON_TOMBSTONES
from repro.service import ShardedFingerprintStore
from tests.reliability.conftest import make_batch

#: Planning knobs small enough that 10-record test segments qualify.
SMALL_POLICY = CompactionPolicy(
    small_segment_records=64,
    trigger_segments_per_shard=3,
    max_concurrent_merges=8,
)


def build_store(root, rng, n_batches=4, batch_size=10, n_shards=2):
    """A store grown through ``n_batches`` ingests (many small segments).

    Batches are strided slices of one keyspace so every ingest spans
    every shard's key range (the shard boundaries are fixed by the
    first batch).
    """
    store = ShardedFingerprintStore(root, n_shards=n_shards)
    corpus = make_batch(n_batches * batch_size, rng)
    batches = [corpus[index::n_batches] for index in range(n_batches)]
    for batch in batches:
        store.ingest(batch)
    return store, batches


def oracle(root):
    """Linear-scan ground truth: key -> (sequence, fingerprint).

    Reads every live segment front to back, honouring tombstones and
    first-match-wins, with no help from the manifest beyond the segment
    list — the reference the compacted store must agree with.
    """
    store = ShardedFingerprintStore(root)
    table = {}
    for record in sorted(store.segments, key=lambda r: r.start_sequence):
        database = store.read_segment(record)
        for sequence, (key, fingerprint) in zip(
            record.sequences(), database.items()
        ):
            if key in store.tombstones:
                continue
            if key not in table or sequence < table[key][0]:
                table[key] = (sequence, fingerprint)
    return table


def rewrite_as_v1(store, record):
    """Regress one live segment to the legacy v1 wire format."""
    database = store.read_segment(record)
    buffer = io.BytesIO()
    dump_database(database, buffer, version=VERSION_1)
    (store.root / record.filename).write_bytes(buffer.getvalue())
    store.evict()


def segment_version(path):
    version, _count = struct.unpack("<HI", path.read_bytes()[4:10])
    return version


class TestPlanner:
    def test_empty_store_plans_nothing(self, tmp_path):
        store = ShardedFingerprintStore(tmp_path / "s", n_shards=2)
        assert len(plan_compaction(store, SMALL_POLICY)) == 0

    def test_below_trigger_plans_nothing(self, tmp_path, rng):
        store, _ = build_store(tmp_path / "s", rng, n_batches=2)
        assert len(plan_compaction(store, SMALL_POLICY)) == 0

    def test_small_runs_are_merged_per_shard(self, tmp_path, rng):
        store, _ = build_store(tmp_path / "s", rng, n_batches=4)
        plan = plan_compaction(store, SMALL_POLICY)
        assert len(plan) == store.n_shards
        for merge in plan.merges:
            assert merge.reason == REASON_SIZE_TIER
            assert len(merge.sources) >= SMALL_POLICY.min_merge_segments
            assert len({record.shard for record in merge.sources}) == 1
            starts = [record.start_sequence for record in merge.sources]
            assert starts == sorted(starts)  # consecutive, in order

    def test_fan_in_is_bounded(self, tmp_path, rng):
        store, _ = build_store(tmp_path / "s", rng, n_batches=6, n_shards=1)
        policy = CompactionPolicy(
            small_segment_records=64,
            trigger_segments_per_shard=3,
            max_merge_segments=3,
        )
        plan = plan_compaction(store, policy)
        assert len(plan) == 2
        assert all(len(m.sources) <= 3 for m in plan.merges)

    def test_big_segment_breaks_the_run(self, tmp_path, rng):
        root = tmp_path / "s"
        store = ShardedFingerprintStore(root, n_shards=1)
        store.ingest(make_batch(10, rng, prefix="a"))
        store.ingest(make_batch(10, rng, prefix="b"))
        store.ingest(make_batch(200, rng, prefix="big"))
        store.ingest(make_batch(10, rng, prefix="c"))
        store.ingest(make_batch(10, rng, prefix="d"))
        plan = plan_compaction(store, SMALL_POLICY)
        assert len(plan) == 2
        merged = [record.filename for m in plan.merges for record in m.sources]
        big = next(r for r in store.segments if r.count == 200)
        assert big.filename not in merged

    def test_tombstoned_segment_plans_single_rewrite(self, tmp_path, rng):
        store, batches = build_store(tmp_path / "s", rng, n_batches=2)
        store.tombstone([batches[0][0][0]])
        plan = plan_compaction(store, SMALL_POLICY)
        assert len(plan) == 1
        merge = plan.merges[0]
        assert merge.reason == REASON_TOMBSTONES
        assert len(merge.sources) == 1

    def test_size_tier_subsumes_tombstone_planning(self, tmp_path, rng):
        store, batches = build_store(tmp_path / "s", rng, n_batches=4)
        store.tombstone([batches[0][0][0]])
        plan = plan_compaction(store, SMALL_POLICY)
        # The tombstoned segment already rides a size-tiered merge; it
        # must not be planned twice.
        names = [r.filename for m in plan.merges for r in m.sources]
        assert len(names) == len(set(names))
        assert all(m.reason == REASON_SIZE_TIER for m in plan.merges)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            CompactionPolicy(small_segment_records=0)
        with pytest.raises(ValueError):
            CompactionPolicy(min_merge_segments=1)
        with pytest.raises(ValueError):
            CompactionPolicy(min_merge_segments=4, max_merge_segments=2)
        with pytest.raises(ValueError):
            CompactionPolicy(backpressure_threshold=0.0)
        with pytest.raises(ValueError):
            CompactionPolicy(max_concurrent_merges=0)


class TestMerge:
    def test_merge_preserves_keys_and_sequences(self, tmp_path, rng):
        root = tmp_path / "s"
        store, _ = build_store(root, rng, n_batches=4)
        before = oracle(root)
        n_before = len(store.segments)

        report = Compactor(store, SMALL_POLICY).compact_all()
        assert report.merges and not report.deferred
        assert len(store.segments) < n_before
        assert oracle(root) == before
        assert verify_store(root).ok
        for merge in report.merges:
            assert merge.output is not None
            assert merge.records_dropped == 0

    def test_tombstoned_records_are_dropped_and_reclaimed(
        self, tmp_path, rng
    ):
        root = tmp_path / "s"
        store, batches = build_store(root, rng, n_batches=4)
        victims = [batches[0][i][0] for i in range(3)]
        sequences = store.tombstone(victims)
        assert len(store) == 37

        report = Compactor(store, SMALL_POLICY).compact_all()
        assert report.records_dropped == 3
        assert report.bytes_reclaimed > 0
        # Tombstones are cleared once their records are physically gone,
        # and the dropped sequences land in the reclaimed ledger.
        assert store.tombstones == {}
        covered = {
            sequence
            for start, count in store.reclaimed
            for sequence in range(start, start + count)
        }
        assert set(sequences.values()) <= covered
        assert len(store) == 37
        assert verify_store(root).ok
        for key in victims:
            assert store.lookup(key) is None

    def test_output_carries_runs_and_bloom(self, tmp_path, rng):
        root = tmp_path / "s"
        store, batches = build_store(root, rng, n_batches=4, n_shards=1)
        store.tombstone([batches[1][5][0]])
        Compactor(store, SMALL_POLICY).compact_all()
        (output,) = store.segments
        assert output.runs  # a hole => multiple runs
        assert sum(count for _start, count in output.runs) == output.count
        manifest = json.loads((root / "manifest.json").read_text())
        assert manifest["segments"][0]["runs"] == [
            list(run) for run in output.runs
        ]
        # The merged segment got a fresh bloom trailer.
        reopened = ShardedFingerprintStore(root)
        found = reopened.lookup(batches[0][0][0])
        assert found is not None and found.segments_scanned == 1

    def test_compact_all_converges(self, tmp_path, rng):
        store, _ = build_store(tmp_path / "s", rng, n_batches=5)
        compactor = Compactor(store, SMALL_POLICY)
        compactor.compact_all()
        assert len(compactor.plan()) == 0
        assert not compactor.compact_all().merges

    def test_max_merges_budget(self, tmp_path, rng):
        store, _ = build_store(tmp_path / "s", rng, n_batches=4)
        assert len(plan_compaction(store, SMALL_POLICY)) == 2
        report = Compactor(store, SMALL_POLICY).compact_all(max_merges=1)
        assert len(report.merges) == 1

    def test_run_once_bounds_merges(self, tmp_path, rng):
        store, _ = build_store(tmp_path / "s", rng, n_batches=4)
        policy = CompactionPolicy(
            small_segment_records=64,
            trigger_segments_per_shard=3,
            max_concurrent_merges=1,
        )
        report = Compactor(store, policy).run_once()
        assert len(report.merges) == 1

    def test_backpressure_defers_the_pass(self, tmp_path, rng):
        store, _ = build_store(tmp_path / "s", rng, n_batches=4)
        compactor = Compactor(
            store, SMALL_POLICY, load_probe=lambda: 0.9
        )
        report = compactor.run_once()
        assert report.deferred and not report.merges
        assert store.metrics.counter("store.compaction_deferred") == 1
        # Load drains; the next pass runs.
        relaxed = Compactor(store, SMALL_POLICY, load_probe=lambda: 0.1)
        assert relaxed.run_once().merges

    def test_metrics_account_the_pass(self, tmp_path, rng):
        store, batches = build_store(tmp_path / "s", rng, n_batches=4)
        store.tombstone([batches[0][0][0]])
        report = Compactor(store, SMALL_POLICY).compact_all()
        metrics = store.metrics
        assert metrics.counter("store.compaction_commits") == len(report.merges)
        assert metrics.counter("store.compaction_merges") == len(report.merges)
        assert metrics.counter("store.compaction_records_dropped") == 1
        assert metrics.counter("store.compaction_segments_merged") == sum(
            len(merge.sources) for merge in report.merges
        )

    def test_ingest_continues_after_compaction(self, tmp_path, rng):
        root = tmp_path / "s"
        store, _ = build_store(root, rng, n_batches=4)
        Compactor(store, SMALL_POLICY).compact_all()
        late = make_batch(10, rng, prefix="late")
        store.ingest(late)
        assert len(store) == 50
        reopened = ShardedFingerprintStore(root)
        found = reopened.lookup(late[0][0])
        assert found is not None and found.sequence == 40


class TestBloomSkipping:
    def test_cold_lookup_skips_unrelated_segments(self, tmp_path, rng):
        root = tmp_path / "s"
        _store, batches = build_store(root, rng, n_batches=6, n_shards=1)
        cold = ShardedFingerprintStore(root)
        found = cold.lookup(batches[5][-1][0])
        assert found is not None
        assert found.segments_skipped >= 4
        assert found.segments_scanned <= 2
        assert cold.metrics.counter("store.bloom_segment_skips") >= 4

    def test_missing_key_reads_almost_nothing(self, tmp_path, rng):
        root = tmp_path / "s"
        build_store(root, rng, n_batches=6, n_shards=1)
        cold = ShardedFingerprintStore(root)
        assert cold.lookup("ghost-0000") is None
        skips = cold.metrics.counter("store.bloom_segment_skips")
        loads = cold.metrics.counter("store.bloom_segment_loads")
        assert skips >= 5 and loads <= 1

    def test_segment_without_trailer_is_still_read(self, tmp_path, rng):
        root = tmp_path / "s"
        store, batches = build_store(root, rng, n_batches=2, n_shards=1)
        rewrite_as_v1(store, store.segments[0])  # v1: no bloom trailer
        cold = ShardedFingerprintStore(root)
        found = cold.lookup(batches[0][0][0])
        assert found is not None and found.sequence == 0


class TestMixedVersionCompaction:
    """Satellite: v1 + v2 segments compact into v2 outputs with
    sequence order preserved, checked against the linear-scan oracle."""

    def test_mixed_store_compacts_to_v2(self, tmp_path, rng):
        root = tmp_path / "s"
        store, batches = build_store(root, rng, n_batches=4, n_shards=1)
        rewrite_as_v1(store, store.segments[0])
        rewrite_as_v1(store, store.segments[2])
        store.tombstone([batches[1][3][0], batches[2][7][0]])
        before = oracle(root)

        store = ShardedFingerprintStore(root)
        report = Compactor(store, SMALL_POLICY).compact_all()
        assert report.merges
        assert oracle(root) == before
        for record in store.segments:
            assert segment_version(root / record.filename) == VERSION_2
        assert verify_store(root).ok

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        v1_mask=st.sets(st.integers(min_value=0, max_value=3), max_size=4),
        tombstoned=st.sets(st.integers(min_value=0, max_value=39), max_size=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_oracle_equivalence_property(
        self, tmp_path_factory, v1_mask, tombstoned, seed
    ):
        """Property: for any subset of segments regressed to v1 and any
        tombstone subset, compaction preserves the oracle exactly."""
        root = tmp_path_factory.mktemp("mixed") / "s"
        rng = np.random.default_rng(seed)
        store, batches = build_store(root, rng, n_batches=4, n_shards=2)
        flat = [key for batch in batches for key, _fp in batch]
        segments = sorted(store.segments, key=lambda r: r.start_sequence)
        for index in v1_mask:
            if index < len(segments):
                rewrite_as_v1(store, segments[index])
        store = ShardedFingerprintStore(root)
        if tombstoned:
            store.tombstone(sorted({flat[i] for i in tombstoned}))
        before = oracle(root)

        Compactor(store, SMALL_POLICY).compact_all()
        after = oracle(root)
        assert after == before
        assert verify_store(root).ok
        reopened = ShardedFingerprintStore(root)
        for key, (sequence, fingerprint) in before.items():
            found = reopened.lookup(key)
            assert found is not None
            assert found.sequence == sequence
            assert found.fingerprint == fingerprint


class TestBackgroundCompactor:
    def test_runs_and_stops(self, tmp_path, rng):
        root = tmp_path / "s"
        store, _ = build_store(root, rng, n_batches=5)
        compactor = Compactor(store, SMALL_POLICY)
        background = BackgroundCompactor(compactor, interval_s=0.01)
        background.start()
        assert background.running
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if any(report.merges for report in background.reports()):
                break
            time.sleep(0.01)
        background.stop()
        assert not background.running
        assert background.failure() is None
        assert any(report.merges for report in background.reports())
        assert len(compactor.plan()) == 0
        assert verify_store(root).ok

    def test_failure_is_surfaced_not_swallowed(self, tmp_path, rng):
        store, _ = build_store(tmp_path / "s", rng, n_batches=4)

        def exploding_probe():
            raise RuntimeError("probe wired backwards")

        background = BackgroundCompactor(
            Compactor(store, SMALL_POLICY, load_probe=exploding_probe),
            interval_s=0.01,
        )
        background.start()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and background.running:
            time.sleep(0.01)
        assert isinstance(background.failure(), RuntimeError)
        assert not background.running

    def test_interval_validation(self, tmp_path, rng):
        store, _ = build_store(tmp_path / "s", rng, n_batches=1)
        with pytest.raises(ValueError):
            BackgroundCompactor(Compactor(store), interval_s=0.0)

    def test_stream_load_probe_reads_queue_fill(self):
        class FakeService:
            def queue_load(self):
                return 0.75

        assert stream_load_probe(FakeService())() == 0.75
