"""Tests for verify/repair self-healing and degraded-mode serving."""

from __future__ import annotations

import struct
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.reliability import (
    FaultPlan,
    FaultyIO,
    StorageIO,
    prune_quarantine,
    repair_store,
    verify_store,
)
from repro.service import (
    BatchIdentificationService,
    BatchQuery,
    ShardedFingerprintStore,
)
from tests.reliability.conftest import make_batch

CORPUS_SEED = 2015
CORPUS_SIZE = 500


def corrupt_record(path, record_index, rng=None):
    """Flip one bit inside the payload of frame ``record_index``.

    With ``rng`` (the CI fault-seed matrix) the flipped position and
    bit vary per seed; without it the payload midpoint is hit.
    """
    data = bytearray(path.read_bytes())
    _version, count = struct.unpack("<HI", bytes(data[4:10]))
    assert record_index < count
    cursor = 10
    for index in range(count):
        (payload_length,) = struct.unpack(
            "<I", bytes(data[cursor : cursor + 4])
        )
        if index == record_index:
            if rng is None:
                position, bit = payload_length // 2, 4
            else:
                position = int(rng.integers(0, payload_length))
                bit = int(rng.integers(0, 8))
            data[cursor + 4 + position] ^= 1 << bit
            path.write_bytes(bytes(data))
            return
        cursor += 4 + payload_length + 4
    raise AssertionError("record not found")


def exact_queries(batch, stride=1):
    """One query per fingerprint, using its own bits as error string."""
    return [
        BatchQuery.from_errors(key, fingerprint.bits)
        for key, fingerprint in batch[::stride]
    ]


def decisions(store, queries):
    """query_id -> matched key (or None) via the batch service."""
    service = BatchIdentificationService(store, cluster_residuals=False)
    report = service.run(queries)
    return {
        result.query_id: result.identification.key if result.matched else None
        for result in report.results
    }


@pytest.fixture(scope="module")
def corpus():
    """Seeded 500-device fingerprint corpus (satellite property test)."""
    rng = np.random.default_rng(CORPUS_SEED)
    return make_batch(CORPUS_SIZE, rng, prefix="device")


@pytest.fixture(scope="module")
def store_pair(tmp_path_factory, corpus):
    """Two identical stores over the corpus; one gets repaired."""
    base = tmp_path_factory.mktemp("repair-property")
    control = ShardedFingerprintStore(base / "control", n_shards=4)
    control.ingest(corpus)
    repaired = ShardedFingerprintStore(base / "repaired", n_shards=4)
    repaired.ingest(corpus)
    report = repair_store(repaired)
    assert report.clean
    return control, repaired


class TestRepairIsInvisibleOnHealthyStore:
    def test_repair_clean_and_idempotent(self, tmp_path, rng):
        store = ShardedFingerprintStore(tmp_path / "s", n_shards=3)
        store.ingest(make_batch(40, rng))
        manifest_before = (tmp_path / "s" / "manifest.json").read_bytes()
        segment_files = {
            record.filename: (tmp_path / "s" / record.filename).read_bytes()
            for record in store.segments
        }
        for _round in range(2):
            report = repair_store(store)
            assert report.clean
            assert report.records_salvaged == 0 and report.records_lost == 0
        assert (tmp_path / "s" / "manifest.json").read_bytes() == manifest_before
        for filename, content in segment_files.items():
            assert (tmp_path / "s" / filename).read_bytes() == content

    def test_decisions_unchanged_across_corpus(self, store_pair, corpus):
        """Every one of the 500 devices identifies identically on the
        repaired store and the untouched control."""
        control, repaired = store_pair
        queries = exact_queries(corpus)
        assert decisions(repaired, queries) == decisions(control, queries)

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        device=st.integers(min_value=0, max_value=CORPUS_SIZE - 1),
        extra_bits=st.lists(
            st.integers(min_value=0, max_value=511), max_size=4
        ),
    )
    def test_decisions_unchanged_property(
        self, store_pair, corpus, device, extra_bits
    ):
        """Property: for any device and any decayed variant of its
        error string, repair does not change the identification."""
        control, repaired = store_pair
        key, fingerprint = corpus[device]
        errors = fingerprint.bits.copy()
        for bit in extra_bits:
            errors.set(bit, True)
        query = [BatchQuery.from_errors(key, errors)]
        assert decisions(repaired, query) == decisions(control, query)


class TestSalvage:
    @pytest.fixture
    def damaged_store(self, tmp_path, rng, fault_rng):
        """A 2-shard store with one record of one segment corrupted."""
        root = tmp_path / "damaged"
        store = ShardedFingerprintStore(root, n_shards=2)
        batch = make_batch(60, rng)
        store.ingest(batch)
        victim = store.segments[0]
        corrupt_record(root / victim.filename, 2, rng=fault_rng)
        store.evict()
        return root, store, batch, victim

    def test_verify_localizes_the_damage(self, damaged_store):
        root, _store, _batch, victim = damaged_store
        verification = verify_store(root)
        assert not verification.ok
        assert verification.corrupt_records == 1
        bad = [entry for entry in verification.segments if not entry.ok]
        assert len(bad) == 1
        assert bad[0].filename == victim.filename
        assert bad[0].corrupt[0].record_index == 2
        assert any("CORRUPT" in line for line in verification.problems())

    def test_salvage_preserves_surviving_decisions(self, damaged_store):
        root, store, batch, victim = damaged_store
        report = repair_store(store)
        assert not report.clean
        assert report.records_salvaged == victim.count - 1
        assert report.records_lost == 1
        assert report.quarantined == [
            (victim.filename, f"1 corrupt of {victim.count} records")
        ]
        # The damaged original is evidence, not garbage.
        quarantine_name = victim.filename.replace("/", "__")
        assert (root / "quarantine" / quarantine_name).exists()
        assert not (root / victim.filename).exists()
        # The replacement is spliced in with the dropped offset recorded.
        replacement = next(
            record
            for record in store.segments
            if record.filename.endswith("-salvaged.pcfp")
        )
        assert replacement.start_sequence == victim.start_sequence
        assert replacement.count == victim.count - 1
        assert len(replacement.omitted) == 1
        assert verify_store(root).ok  # degraded but consistent
        assert store.degraded_shards() == [victim.shard]

        # Every fingerprint that survived still identifies as itself,
        # with its original sequence-based priority.
        expectation = decisions(store, exact_queries(batch))
        missing = [key for key, matched in expectation.items() if matched is None]
        assert len(missing) == 1  # exactly the corrupted record
        for key, matched in expectation.items():
            if key not in missing:
                assert matched == key

        # Self-healing converges: a second repair finds nothing.
        assert repair_store(store).clean

    def test_unreadable_segment_is_fully_quarantined(self, tmp_path, rng):
        root = tmp_path / "trashed"
        store = ShardedFingerprintStore(root, n_shards=2)
        store.ingest(make_batch(30, rng))
        victim = store.segments[0]
        (root / victim.filename).write_bytes(b"not a fingerprint stream")
        store.evict()
        report = repair_store(store)
        assert report.records_salvaged == 0
        assert report.records_lost == victim.count
        assert store.metrics.counter("store.segments_quarantined") == 1
        assert verify_store(root).ok

    def test_missing_segment_is_quarantined(self, tmp_path, rng):
        root = tmp_path / "missing"
        store = ShardedFingerprintStore(root, n_shards=2)
        store.ingest(make_batch(30, rng))
        victim = store.segments[-1]
        (root / victim.filename).unlink()
        store.evict()
        report = repair_store(store)
        assert (victim.filename, "segment file missing") in report.quarantined
        assert report.records_lost >= victim.count
        assert verify_store(root).ok


class TestDegradedServing:
    @pytest.fixture
    def served_store(self, tmp_path, rng):
        root = tmp_path / "serving"
        store = ShardedFingerprintStore(root, n_shards=3)
        batch = make_batch(90, rng)
        store.ingest(batch)
        return root, store, batch

    def test_corrupt_shard_degrades_instead_of_failing(
        self, served_store, fault_rng
    ):
        """The acceptance criterion: one shard fully corrupted, batch
        queries still answer from the healthy shards, every result is
        tagged degraded and the report names the lost key range."""
        root, store, batch = served_store
        victim_shard = store.segments[0].shard
        for record in store.segments:
            if record.shard == victim_shard:
                corrupt_record(root / record.filename, 0, rng=fault_rng)
        store.evict()

        service = BatchIdentificationService(
            store, cluster_residuals=False, retry_backoff_s=0.0
        )
        report = service.run(exact_queries(batch, stride=3))
        assert report.degraded
        assert [entry.shard for entry in report.degraded_shards] == [
            victim_shard
        ]
        entry = report.degraded_shards[0]
        assert entry.key_range == store.shard_key_range(victim_shard)
        assert "unreadable" in entry.reason
        assert all(result.degraded for result in report.results)
        # Healthy shards still answered authoritatively.
        healthy = [
            result
            for result in report.results
            if store.shard_for_key(result.query_id) != victim_shard
        ]
        assert healthy and all(result.matched for result in healthy)
        assert all(
            result.identification.key == result.query_id for result in healthy
        )
        # Victim-shard queries fell through, but did not error.
        lost = [
            result
            for result in report.results
            if store.shard_for_key(result.query_id) == victim_shard
        ]
        assert lost and not any(result.matched for result in lost)
        assert service.metrics.counter("batch.shard_failures") == 1
        assert service.metrics.counter("batch.shard_retries") >= 1
        assert service.metrics.counter("batch.degraded_queries") == len(
            report.results
        )

        # Repair, then serve again: survivors answer, the report still
        # flags the shard as incomplete (quarantined data is gone).
        repair_store(store)
        after = BatchIdentificationService(
            store, cluster_residuals=False
        ).run(exact_queries(batch, stride=3))
        assert after.degraded
        assert "quarantined" in after.degraded_shards[0].reason
        assert service.metrics.counter("batch.shard_failures") == 1  # no new

    def test_transient_fault_heals_via_retry(self, tmp_path, rng):
        root = tmp_path / "transient"
        batch = make_batch(20, rng)
        ShardedFingerprintStore(root, n_shards=2).ingest(batch)

        # Op 1 is the manifest read at open; op 2 is the first segment
        # read of the batch run — it fails once, then the retry heals.
        io_ = FaultyIO(FaultPlan(fail_at=2, match="segment-"))
        store = ShardedFingerprintStore(root, storage_io=io_)
        service = BatchIdentificationService(
            store,
            cluster_residuals=False,
            retry_backoff_s=0.0,
            max_workers=1,
        )
        report = service.run(exact_queries(batch, stride=20))
        assert not report.degraded
        assert report.results[0].matched
        assert io_.faults_fired == 1
        assert service.metrics.counter("batch.shard_retries") == 1
        assert service.metrics.counter("batch.shard_failures") == 0

    def test_slow_shard_times_out_into_degraded(self, tmp_path, rng):
        class SlowIO(StorageIO):
            def read_bytes(self, path):
                if str(path).endswith(".pcfp"):
                    time.sleep(0.5)
                return super().read_bytes(path)

        root = tmp_path / "slow"
        batch = make_batch(20, rng)
        ShardedFingerprintStore(root, n_shards=2).ingest(batch)
        store = ShardedFingerprintStore(root, storage_io=SlowIO())
        service = BatchIdentificationService(
            store,
            cluster_residuals=False,
            shard_retries=0,
            shard_timeout_s=0.05,
        )
        report = service.run(exact_queries(batch, stride=10))
        assert report.degraded
        assert any(
            "timed out" in entry.reason for entry in report.degraded_shards
        )
        assert service.metrics.counter("batch.shard_timeouts") >= 1
        assert not any(result.matched for result in report.results)


class TestPruneQuarantine:
    """Satellite: retention pruning of the quarantine directory."""

    @pytest.fixture
    def quarantined_store(self, tmp_path, rng, fault_rng):
        """A store whose first segment was corrupted and quarantined."""
        root = tmp_path / "pruned"
        store = ShardedFingerprintStore(root, n_shards=2)
        store.ingest(make_batch(60, rng))
        victim = store.segments[0]
        corrupt_record(root / victim.filename, 1, rng=fault_rng)
        store.evict()
        repair_store(store)
        assert store.quarantined
        return root, store, victim

    def test_clean_store_prunes_nothing(self, tmp_path, rng):
        store = ShardedFingerprintStore(tmp_path / "s", n_shards=2)
        store.ingest(make_batch(10, rng))
        report = prune_quarantine(store, older_than_days=0.0)
        assert report.examined == 0
        assert report.pruned_entries == 0 and not report.pruned_files

    def test_dry_run_touches_nothing(self, quarantined_store):
        root, store, _victim = quarantined_store
        manifest_before = (root / "manifest.json").read_bytes()
        report = prune_quarantine(store, older_than_days=0.0, dry_run=True)
        assert report.dry_run
        assert report.examined == 1 and report.pruned_entries == 1
        assert report.pruned_files and report.bytes_freed > 0
        for filename in report.pruned_files:
            assert (root / filename).exists()  # still on disk
        assert (root / "manifest.json").read_bytes() == manifest_before
        assert store.quarantined  # entry still recorded

    def test_prune_deletes_files_and_reclaims_sequences(
        self, quarantined_store
    ):
        root, store, victim = quarantined_store
        report = prune_quarantine(store, older_than_days=0.0)
        assert not report.dry_run
        assert report.pruned_entries == 1
        assert report.bytes_freed > 0
        for filename in report.pruned_files:
            assert not (root / filename).exists()
        assert store.quarantined == []
        covered = {
            sequence
            for start, count in store.reclaimed
            for sequence in range(start, start + count)
        }
        assert set(
            range(victim.start_sequence, victim.start_sequence + victim.count)
        ) <= covered
        assert store.metrics.counter("store.quarantine_pruned") == 1
        assert verify_store(root).ok
        # Idempotent: a second prune finds nothing.
        assert prune_quarantine(store, older_than_days=0.0).pruned_entries == 0

    def test_fresh_files_are_kept(self, quarantined_store):
        _root, store, _victim = quarantined_store
        report = prune_quarantine(store, older_than_days=30.0)
        assert report.pruned_entries == 0
        assert report.kept_files
        assert store.quarantined  # untouched

    def test_aged_files_cross_the_cutoff(self, quarantined_store):
        import os as _os

        root, store, _victim = quarantined_store
        old = time.time() - 10 * 86400.0
        for path in (root / "quarantine").iterdir():
            _os.utime(path, (old, old))
        report = prune_quarantine(store, older_than_days=7.0)
        assert report.pruned_entries == 1
        assert store.quarantined == []
        assert verify_store(root).ok

    def test_negative_retention_rejected(self, quarantined_store):
        _root, store, _victim = quarantined_store
        with pytest.raises(ValueError):
            prune_quarantine(store, older_than_days=-1.0)
