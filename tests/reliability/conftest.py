"""Shared fixtures for the fault-injection and recovery tests.

The chaos tests are seeded so every corruption pattern replays
bit-for-bit.  CI runs the suite under several ``REPRO_FAULT_SEED``
values; locally the default seed keeps runs deterministic.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.bits import BitVector
from repro.core import Fingerprint

NBITS = 512


@pytest.fixture
def fault_seed() -> int:
    """Seed for injected corruption (CI matrix via REPRO_FAULT_SEED)."""
    return int(os.environ.get("REPRO_FAULT_SEED", "2015"))


@pytest.fixture
def fault_rng(fault_seed: int) -> np.random.Generator:
    """RNG derived from the fault seed, for test-local corruption."""
    return np.random.default_rng(fault_seed)


def make_batch(n, rng, prefix="dev"):
    """``n`` synthetic fingerprints keyed ``<prefix>-0000`` onwards."""
    return [
        (
            f"{prefix}-{index:04d}",
            Fingerprint(bits=BitVector.random(NBITS, rng, 0.02)),
        )
        for index in range(n)
    ]
